"""Command-line interface: run the paper's algorithms from a shell.

Every ``solve`` invocation is a :class:`repro.api.Scenario`; the valid
``--family`` / ``--problem`` / ``--algorithm`` names come from the
registries (:data:`repro.graphs.families.GRAPH_FAMILIES`,
:data:`repro.olocal.PROBLEMS`, :data:`repro.core.algorithms.ALGORITHMS`
— see ``repro sweep --list`` for the catalog), so anything registered
there — including third-party ``repro.plugins`` entry points — is
runnable here with no CLI changes. Unknown names exit with an error
listing the valid ones.

Examples::

    python -m repro solve --family gnp --n 48 --problem mis
    python -m repro solve --family complete --n 16 --algorithm baseline \
        --problem coloring --trace
    python -m repro solve --family path --n 24 --algorithm theorem9
    python -m repro cluster --family grid --n 36 --b 4
    python -m repro report --only E1 E5
    python -m repro sweep --experiments E9 --workers 4
    python -m repro sweep --grid --families path gnp --sizes 16 32 \
        --problems mis coloring --algorithms theorem1 theorem9 \
        --trials 3 --workers 4
"""

from __future__ import annotations

import argparse
import sys

from repro.api import Scenario, run_scenario
from repro.core.algorithms import ALGORITHMS, ENGINE_FAULTY, FAULT_PARAMS
from repro.graphs import StaticGraph
from repro.graphs.families import GRAPH_FAMILIES
from repro.graphs.families import build_family_graph as _build_family_graph
from repro.olocal import PROBLEMS
from repro.registry import load_plugins
from repro.runner.cache import DEFAULT_CACHE_DIR

#: Deprecated shim — alias → canonical problem name. The aliases now
#: live on the registry entries; import :data:`repro.olocal.PROBLEMS`
#: and use ``PROBLEMS.resolve(name)`` instead.
PROBLEM_ALIASES = PROBLEMS.alias_map()


def build_family_graph(*args, **kwargs) -> StaticGraph:
    """Deprecated shim — moved to
    :func:`repro.graphs.families.build_family_graph` (kept so pre-registry
    imports from ``repro.cli`` keep working)."""
    return _build_family_graph(*args, **kwargs)


def build_graph(args: argparse.Namespace) -> StaticGraph:
    """Instantiate the requested graph family with the requested ID scheme."""
    try:
        return _build_family_graph(
            args.family, args.n, seed=args.seed, p=args.p,
            degree=args.degree, ids=args.ids,
        )
    except KeyError as exc:
        raise SystemExit(exc.args[0]) from exc


def _scenario_from_args(args: argparse.Namespace) -> Scenario:
    """The ``solve`` arguments as a :class:`Scenario`."""
    params: dict[str, object] = {"p": args.p, "degree": args.degree}
    if args.b is not None:
        # --b is forwarded only to algorithms that declare it (theorem1,
        # theorem9); for the others it has always been a no-op — keep
        # that, but say so instead of failing scenario validation.
        entry = None
        if args.algorithm in ALGORITHMS:
            entry = ALGORITHMS.entry(args.algorithm)
        if entry is None or "b" in entry.params:
            params["b"] = args.b
        else:
            print(
                f"note: --b is ignored by algorithm {entry.name!r}",
                file=sys.stderr,
            )
    return Scenario(
        family=args.family,
        n=args.n,
        ids=args.ids,
        seed=args.seed,
        problem=args.problem,
        algorithm=args.algorithm,
        engine=args.engine,
        params=params,
        fault_drop=args.fault_drop,
        fault_corrupt=args.fault_corrupt,
        fault_seed=args.fault_seed,
        immune_rounds=tuple(args.immune_rounds),
    )


def _print_engine_matrix() -> int:
    """``repro solve --list``: the algorithm × engine support matrix.

    One row per registered algorithm, engines in adapter order — the
    first listed is that algorithm's default. README.md embeds a copy
    of this table; a docs test keeps the two in sync.
    """
    from repro.registry import load_plugins

    load_plugins()
    print("algorithm × engine matrix (first listed = default):")
    for name in ALGORITHMS:
        print(f"  {name:<10} {' '.join(ALGORITHMS.get(name).engines)}")
    return 0


def _start_trace(path: str) -> str:
    """Arm the structured span emitter (see :mod:`repro.obs.spans`)."""
    from repro.obs import configure

    configure(path)
    return path


def _end_trace(path: str, profile: bool) -> None:
    """Disarm tracing; with ``profile`` also render the span summary."""
    from repro.obs import disable

    disable()
    print(f"wrote {path}", file=sys.stderr)
    if profile:
        from repro.obs.render import load_trace, render_trace

        records, bad = load_trace(path)
        print(render_trace(path, records, bad), file=sys.stderr)


def cmd_solve(args: argparse.Namespace) -> int:
    """``repro solve``: run any registered algorithm on a generated graph."""
    if args.list:
        return _print_engine_matrix()
    if not args.profile:
        return _run_solve(args)
    path = _start_trace("RUN.trace.jsonl")
    try:
        return _run_solve(args)
    finally:
        _end_trace(path, profile=True)


def _run_solve(args: argparse.Namespace) -> int:
    from repro.errors import ReproError

    scenario = _scenario_from_args(args)
    try:
        result = run_scenario(scenario)
    except ReproError as exc:
        if not scenario.faults_active:
            raise
        # Failing loudly is the *expected* outcome of a fault scenario
        # that actually breaks the protocol — report it as a result,
        # not a traceback.
        print(f"faults broke the protocol (as designed): "
              f"{type(exc).__name__}: {exc}")
        return 3
    if not result.ok:
        raise SystemExit("\n".join(result.errors))
    graph, outcome = result.graph, result.outcome
    print(f"graph: {args.family} n={graph.n} edges={graph.num_edges} "
          f"Δ={graph.max_degree} id_space={graph.id_space}")
    print(f"{outcome.algorithm}: awake={outcome.awake_complexity} "
          f"avg={outcome.average_awake:.1f} "
          f"rounds={outcome.round_complexity:,} "
          f"messages={outcome.messages_sent:,}")
    if "clustering_colors" in outcome.extras:
        print(f"clustering: {outcome.extras['clustering_colors']} colors "
              f"(bound {outcome.extras['palette_bound']})")
    if "dropped" in outcome.extras:
        print(f"faults: engine={outcome.engine} "
              f"dropped={outcome.extras['dropped']} "
              f"corrupted={outcome.extras['corrupted']} (run survived)")
    if args.show_outputs:
        for v in sorted(outcome.outputs):
            print(f"  {v}: {outcome.outputs[v]}")
    if args.trace:
        _print_trace(graph, args)
    return 0


def _print_trace(graph, args) -> None:
    from repro.model.trace import traced_simulation

    adapter = ALGORITHMS.get(args.algorithm)
    if adapter.trace_program is None:
        raise SystemExit(
            f"--trace is not supported for algorithm {adapter.name!r}; "
            f"traceable: "
            f"{[a.name for a in ALGORITHMS.values() if a.trace_program]}"
        )
    problem = PROBLEMS.get(args.problem)
    program = adapter.trace_program(graph, problem, args.b)
    _, trace = traced_simulation(
        graph, program, inputs=problem.make_inputs(graph)
    )
    sample = sorted(graph.nodes)[: args.trace_nodes]
    print()
    print(trace.render_timeline(nodes=sample))
    print()
    print(trace.render_energy_summary())


def cmd_cluster(args: argparse.Namespace) -> int:
    """``repro cluster``: compute and summarize the Theorem 13 clustering."""
    from collections import Counter

    from repro.core.theorem13 import compute_clustering

    graph = build_graph(args)
    result = compute_clustering(graph, b=args.b)
    metrics = result.simulation.metrics
    print(f"graph: {args.family} n={graph.n} Δ={graph.max_degree}")
    print(f"b={result.b} colors={result.clustering.num_colors()} "
          f"(bound {result.palette_bound})")
    print(f"awake={result.awake_complexity} "
          f"avg={metrics.average_awake:.1f} "
          f"rounds={result.round_complexity:,}")
    sizes = Counter(
        len(c.members) for c in result.clustering.clusters(graph)
    )
    print(f"cluster sizes: {dict(sorted(sizes.items()))}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """``repro report``: regenerate EXPERIMENTS.md via the sweep runner."""
    import os

    from repro.analysis.report import report_journal, write_report
    from repro.runner import TrialCache

    trace_file = None
    if args.trace or args.profile:
        out_dir = os.path.dirname(args.output) or "."
        trace_file = _start_trace(os.path.join(out_dir, "REPORT.trace.jsonl"))
    cache = TrialCache(args.cache_dir) if args.cache else None
    try:
        return write_report(
            args.output, selected=args.only, workers=args.workers,
            cache=cache, journal=report_journal(args),
        )
    finally:
        if trace_file is not None:
            _end_trace(trace_file, profile=args.profile)


def _print_sweep_catalog() -> int:
    """``repro sweep --list``: what can run, without running anything."""
    from repro.runner import plan_catalog
    from repro.runner.trials import QUICK_EXPERIMENTS

    print("E-series experiment plans (--experiments / report --only):")
    for exp_id, title, num_trials in plan_catalog():
        trials = f"{num_trials} trial{'s' if num_trials != 1 else ''}"
        print(f"  {exp_id:<4} {trials:>9}  {title}")
    print(f"quick subset (--quick): {' '.join(QUICK_EXPERIMENTS)}")
    print()
    print("grid axes (--grid), from the scenario registries:")
    print(f"  families:   {' '.join(sorted(GRAPH_FAMILIES))}")
    print(f"  problems:   {' '.join(sorted(PROBLEMS.alias_map()))} "
          f"(aliases of {' '.join(sorted(PROBLEMS))})")
    print(f"  algorithms: {' '.join(ALGORITHMS)}")
    print()
    print("engines (per algorithm; first listed = its default):")
    for name in ALGORITHMS:
        print(f"  {name:<10} {' '.join(ALGORITHMS.get(name).engines)}")
    print(f"fault axis ({ENGINE_FAULTY} engine; solve/sweep flags):")
    for param, doc in FAULT_PARAMS.items():
        flag = "--" + param.replace("_", "-")
        print(f"  {flag:<16} {doc}")
    return 0


def _sweep_journal(args, spec):
    """The journal a sweep writes (and, with ``--resume``, reads).

    ``--resume PATH`` reuses an existing journal; otherwise a fresh
    ``SWEEP_<name>.journal`` is written next to the artifact unless
    journaling (``--no-journal``) or the artifact itself
    (``--no-artifact``) is disabled.
    """
    import os

    from repro.runner import SweepJournal

    if args.resume is not None:
        return SweepJournal(path=args.resume, resume=True)
    if args.no_journal or args.no_artifact:
        return None
    return SweepJournal(
        path=os.path.join(args.output_dir, f"SWEEP_{spec.name}.journal")
    )


def cmd_sweep(args: argparse.Namespace) -> int:
    """``repro sweep``: run sharded experiment sweeps (see repro.runner)."""
    import os

    from repro.runner import sweep_from_experiments, sweep_from_grid

    if args.list:
        return _print_sweep_catalog()
    try:
        if args.grid:
            spec = sweep_from_grid(
                families=args.families,
                sizes=args.sizes,
                problems=args.problems,
                algorithms=args.algorithms,
                trials_per_config=args.trials,
                master_seed=args.seed,
                name=args.tag or "grid",
                engines=args.engines,
                fault_drop=args.fault_drop,
                fault_corrupt=args.fault_corrupt,
                fault_seed=args.fault_seed,
                immune_rounds=args.immune_rounds,
            )
        else:
            spec = sweep_from_experiments(
                experiments=args.experiments,
                quick=args.quick,
                name=args.tag or ("quick" if args.quick else "eseries"),
            )
    except KeyError as exc:
        raise SystemExit(exc.args[0]) from exc
    trace_file = None
    if args.trace or args.profile:
        trace_file = _start_trace(
            os.path.join(args.output_dir, f"SWEEP_{spec.name}.trace.jsonl")
        )
    try:
        return _run_sweep_command(args, spec)
    finally:
        if trace_file is not None:
            _end_trace(trace_file, profile=args.profile)


def _run_sweep_command(args: argparse.Namespace, spec) -> int:
    from repro.obs import SweepProgress
    from repro.runner import (
        RetryPolicy,
        SweepError,
        TrialCache,
        run_sweep,
        write_sweep_artifact,
    )

    print(
        f"sweep {spec.name!r}: {len(spec.trials)} trials, "
        f"{args.workers} worker(s)",
        file=sys.stderr,
    )
    progress = SweepProgress(
        len(spec.trials), workers=args.workers, verbose=args.verbose
    )
    cache = TrialCache(args.cache_dir) if args.cache else None
    retry = None
    if args.retries > 0:
        # CLI retries cover *any* trial exception: transient faults get
        # retried, deterministic failures just burn their attempts.
        retry = RetryPolicy(
            max_attempts=args.retries + 1,
            retriable=(Exception,),
            backoff_base=args.retry_backoff,
        )
    try:
        result = run_sweep(
            spec,
            workers=args.workers,
            progress=progress,
            cache=cache,
            retry=retry,
            timeout=args.timeout,
            max_pool_restarts=args.max_pool_restarts,
            keep_going=args.keep_going,
            journal=_sweep_journal(args, spec),
        )
    except SweepError as exc:
        progress.finish()
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 1
    progress.finish()
    if result.failures:
        print(result.failure_report.render(), file=sys.stderr)
        if not args.allow_partial:
            print(
                "sweep completed with failures; pass --allow-partial to "
                "aggregate the surviving trials",
                file=sys.stderr,
            )
            return 1
    print(result.render(allow_partial=args.allow_partial))
    busy = sum(
        o.seconds for o in result.outcomes if not (o.cached or o.resumed)
    )
    line = (
        f"\nwall {result.wall_seconds:.2f}s, trial time {busy:.2f}s, "
        f"workers {result.workers}"
    )
    if result.cache_stats is not None:
        line += f"; cache: {result.cache_stats.summary()}"
    if result.pool_restarts:
        line += f"; pool restarts: {result.pool_restarts}"
    print(line, file=sys.stderr)
    if not args.no_artifact:
        artifact = write_sweep_artifact(result, args.output_dir)
        print(f"wrote {artifact}", file=sys.stderr)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace``: render (or just validate) a .trace.jsonl file."""
    from repro.obs.render import check_trace, load_trace, render_trace

    records, bad = load_trace(args.file)
    problems = check_trace(records, bad)
    if not args.check:
        print(render_trace(args.file, records, bad, limit=args.limit))
    if problems:
        for problem in problems:
            print(f"trace problem: {problem}", file=sys.stderr)
        return 1
    if args.check:
        print(f"{args.file}: {len(records)} record(s), spans balance")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """``repro stats``: summarize sweep artifacts and the bench history."""
    import json

    from repro.obs.render import (
        render_bench_history,
        render_bench_rows,
        render_stats,
    )

    shown = 0
    if args.bench:
        if args.store is not None:
            # Same renderer, rows from the ingested store: the file and
            # the store must produce identical trend output (tested).
            from repro.serve.store import ResultStore, StoreError

            try:
                store = ResultStore(args.store, readonly=True)
            except StoreError as exc:
                raise SystemExit(str(exc)) from exc
            try:
                source = store.bench_source()
                label = source["path"] if source else args.store
                print(render_bench_rows(store.bench_rows(), label))
            finally:
                store.close()
        else:
            print(render_bench_history(args.bench_history))
        shown += 1
    for path in args.files:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
        if shown:
            print()
        print(render_stats(path, payload))
        shown += 1
    if not shown:
        raise SystemExit(
            "repro stats: pass SWEEP_*.json artifacts and/or --bench"
        )
    return 0


def cmd_ingest(args: argparse.Namespace) -> int:
    """``repro ingest``: index result files into a sqlite result store.

    Idempotent (re-ingesting the same bytes is a "no-op" line) and
    fail-open (corrupt or unrecognized files print a warning on stderr
    and are skipped — the exit code stays 0, matching the trial cache's
    corrupt-record convention).
    """
    from repro.serve.store import ResultStore, StoreError

    try:
        store = ResultStore(args.store)
    except StoreError as exc:
        raise SystemExit(str(exc)) from exc
    try:
        for result in store.ingest_many(args.paths):
            stream = sys.stdout if result.ok else sys.stderr
            print(result.render(), file=stream)
        counts = store.counts()
    finally:
        store.close()
    print(
        f"store {args.store}: {counts['artifacts']} artifact(s), "
        f"{counts['trials']} trial(s), {counts['sweep_tables']} table(s), "
        f"{counts['bench_rows']} bench row(s)",
        file=sys.stderr,
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: run the results/provenance HTTP service.

    Binds (``--port 0`` = ephemeral; the actual port goes to stdout and
    ``--port-file``), optionally ingests files first, then serves until
    interrupted or a ``POST /shutdown`` arrives.
    """
    import time

    from repro.runner.cache import TrialCache
    from repro.serve.service import ReproService
    from repro.serve.store import ResultStore, StoreError

    try:
        store = ResultStore(args.store, readonly=args.readonly)
    except StoreError as exc:
        raise SystemExit(str(exc)) from exc
    service = ReproService(
        store,
        cache=TrialCache(args.cache_dir),
        readonly=args.readonly,
        artifact_dir=args.artifact_dir,
    )
    if args.ingest:
        for result in store.ingest_many(args.ingest):
            print(result.render(), file=sys.stderr)
    server = service.start(port=args.port, host=args.host)
    host, port = server.server_address[:2]
    print(f"serving on http://{host}:{port} "
          f"(store {args.store}{', readonly' if args.readonly else ''})",
          file=sys.stderr)
    if args.port_file:
        with open(args.port_file, "w", encoding="utf-8") as handle:
            handle.write(f"{port}\n")
    try:
        # service.stop() (triggered by POST /shutdown, or by Ctrl-C
        # below) clears _server; poll it so shutdown unblocks this loop.
        while service._server is not None:
            time.sleep(0.2)
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
        service.stop()
    finally:
        store.close()
    return 0


def make_parser() -> argparse.ArgumentParser:
    """Build the argparse tree for the ``repro`` CLI.

    Name arguments (``--family``, ``--problem``, ``--algorithm``) are
    deliberately *not* argparse ``choices``: they are validated against
    the registries at run time, so plugin registrations work and
    unknown names fail with an error listing what *is* registered.
    """
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_graph_args(p):
        p.add_argument("--family", default="gnp",
                       help="graph family (see `repro sweep --list`)")
        p.add_argument("--n", type=int, default=32)
        p.add_argument("--p", type=float, default=0.15)
        p.add_argument("--degree", type=int, default=4)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--ids", default="identity",
            help="identity | permuted | polyK (IDs from [n^K])",
        )
        p.add_argument("--b", type=int, default=None,
                       help="override b = 2^sqrt(log n)")

    def add_fault_args(p):
        g = p.add_argument_group(
            "fault injection",
            f"nonzero probabilities select the {ENGINE_FAULTY!r} engine",
        )
        g.add_argument("--fault-drop", type=float, default=0.0,
                       help=FAULT_PARAMS["fault_drop"])
        g.add_argument("--fault-corrupt", type=float, default=0.0,
                       help=FAULT_PARAMS["fault_corrupt"])
        g.add_argument("--fault-seed", type=int, default=0,
                       help=FAULT_PARAMS["fault_seed"])
        g.add_argument("--immune-rounds", nargs="*", type=int, default=[],
                       help=FAULT_PARAMS["immune_rounds"])

    solve_p = sub.add_parser("solve", help="run an O-LOCAL solver")
    add_graph_args(solve_p)
    solve_p.add_argument("--problem", default="mis",
                         help="problem name or alias (see `repro sweep --list`)")
    solve_p.add_argument(
        "--algorithm", default="theorem1",
        help="algorithm name or alias (see `repro sweep --list`)",
    )
    solve_p.add_argument(
        "--engine", default=None,
        help="execution engine (default: the algorithm's own; "
        "see `repro solve --list`)",
    )
    solve_p.add_argument(
        "--list", action="store_true",
        help="print the algorithm × engine support matrix and exit",
    )
    add_fault_args(solve_p)
    solve_p.add_argument("--show-outputs", action="store_true")
    solve_p.add_argument("--trace", action="store_true",
                         help="print awake timelines")
    solve_p.add_argument("--trace-nodes", type=int, default=12)
    solve_p.add_argument(
        "--profile", action="store_true",
        help="write structured spans to RUN.trace.jsonl and print a span "
        "summary (`repro trace` re-renders it; distinct from --trace, "
        "the per-node awake timeline)",
    )
    solve_p.set_defaults(func=cmd_solve)

    cluster_p = sub.add_parser(
        "cluster", help="compute the Theorem 13 clustering"
    )
    add_graph_args(cluster_p)
    cluster_p.set_defaults(func=cmd_cluster)

    def add_cache_args(p):
        p.add_argument(
            "--cache", action=argparse.BooleanOptionalAction, default=True,
            help="reuse trial results from the content-addressed cache "
            "(--no-cache recomputes everything)",
        )
        p.add_argument(
            "--cache-dir", default=DEFAULT_CACHE_DIR,
            help="trial cache directory",
        )

    report_p = sub.add_parser(
        "report",
        help="regenerate EXPERIMENTS.md (sharded over the sweep runner)",
    )
    # Flags are defined once, in the analysis layer, next to write_report.
    from repro.analysis.report import add_report_args

    add_report_args(report_p)
    report_p.set_defaults(func=cmd_report)

    sweep_p = sub.add_parser(
        "sweep",
        help="run experiment sweeps, sharded across worker processes",
    )
    sweep_p.add_argument(
        "--experiments", nargs="+", default=None, metavar="EXP",
        help="E-series ids to run (default: all; with --quick: the cheap "
        "CI subset)",
    )
    sweep_p.add_argument(
        "--quick", action="store_true",
        help="cheap experiment subset for CI smoke runs",
    )
    sweep_p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes; 1 = serial in-process (bit-identical "
        "reference path)",
    )
    sweep_p.add_argument(
        "--seed", type=int, default=0,
        help="master seed for grid sweeps (per-trial seeds are derived)",
    )
    sweep_p.add_argument(
        "--tag", default=None,
        help="artifact name: SWEEP_<tag>.json (default: sweep name)",
    )
    sweep_p.add_argument("--output-dir", default=".")
    sweep_p.add_argument(
        "--no-artifact", action="store_true",
        help="print tables only; skip writing SWEEP_*.json",
    )
    sweep_p.add_argument(
        "--grid", action="store_true",
        help="seeded (family, n, problem, algorithm) solve grid instead "
        "of E-series experiments",
    )
    sweep_p.add_argument("--families", nargs="*", default=["path", "gnp"])
    sweep_p.add_argument(
        "--sizes", nargs="*", type=int, default=[16, 32, 64]
    )
    sweep_p.add_argument("--problems", nargs="*", default=["mis"])
    sweep_p.add_argument(
        "--algorithms", nargs="*", default=["theorem1"],
        help="registered algorithm names (see `repro sweep --list`)",
    )
    sweep_p.add_argument(
        "--trials", type=int, default=1,
        help="seeded trials per grid cell",
    )
    sweep_p.add_argument(
        "--engines", nargs="*", default=[],
        help="run every grid cell once per engine (same graph under "
        "each — a built-in differential test; see `repro solve --list`)",
    )
    sweep_p.add_argument(
        "--list", action="store_true",
        help="print available experiment and grid plans (id, title, "
        "trial count) and exit without running anything",
    )
    add_cache_args(sweep_p)
    add_fault_args(sweep_p)
    resilience = sweep_p.add_argument_group(
        "resilience",
        "retry/timeout/checkpoint-resume (see PERFORMANCE.md §7)",
    )
    resilience.add_argument(
        "--retries", type=int, default=0,
        help="re-run a failed trial up to N more times (any exception)",
    )
    resilience.add_argument(
        "--retry-backoff", type=float, default=0.0, metavar="SECONDS",
        help="base of the deterministic jittered exponential backoff "
        "between attempts (0: retry immediately)",
    )
    resilience.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-trial wall-clock deadline; a straggler raises and is "
        "requeued through the retry path",
    )
    resilience.add_argument(
        "--max-pool-restarts", type=int, default=2,
        help="rebuild the worker pool after a hard worker death at most "
        "this many times before giving up",
    )
    resilience.add_argument(
        "--keep-going", action="store_true",
        help="collect per-trial failures into a failure report instead "
        "of aborting the sweep on the first one",
    )
    resilience.add_argument(
        "--allow-partial", action="store_true",
        help="aggregate the surviving trials when some failed "
        "(with --keep-going); refused otherwise",
    )
    resilience.add_argument(
        "--resume", default=None, metavar="JOURNAL",
        help="resume from a SWEEP_*.journal: journaled trials are "
        "skipped, new completions are appended to the same file",
    )
    resilience.add_argument(
        "--no-journal", action="store_true",
        help="do not write SWEEP_<name>.journal next to the artifact",
    )
    obs = sweep_p.add_argument_group(
        "observability",
        "structured spans + consolidated progress (docs/OBSERVABILITY.md)",
    )
    obs.add_argument(
        "--trace", action="store_true",
        help="write SWEEP_<name>.trace.jsonl spans next to the artifact; "
        "tables, cache keys and journals are byte-identical either way",
    )
    obs.add_argument(
        "--profile", action="store_true",
        help="--trace plus a rendered span summary on stderr afterwards",
    )
    obs.add_argument(
        "--verbose", action="store_true",
        help="one progress line per trial instead of the consolidated "
        "done/total + hit-rate + ETA line",
    )
    sweep_p.set_defaults(func=cmd_sweep)

    trace_p = sub.add_parser(
        "trace",
        help="render a structured .trace.jsonl (written by --trace/--profile)",
    )
    trace_p.add_argument(
        "file", help="a SWEEP_*.trace.jsonl / RUN.trace.jsonl path"
    )
    trace_p.add_argument(
        "--limit", type=int, default=12,
        help="rows in the slowest-spans table",
    )
    trace_p.add_argument(
        "--check", action="store_true",
        help="validate only (every line parses, spans balance); exit 1 "
        "with the problems listed otherwise",
    )
    trace_p.set_defaults(func=cmd_trace)

    stats_p = sub.add_parser(
        "stats",
        help="throughput / cache-economics / retry stats from SWEEP_*.json",
    )
    stats_p.add_argument(
        "files", nargs="*", metavar="SWEEP_JSON",
        help="sweep artifacts written by `repro sweep`",
    )
    stats_p.add_argument(
        "--bench", action="store_true",
        help="also render the committed engine-benchmark trajectory",
    )
    stats_p.add_argument(
        "--bench-history", default="BENCH_history.jsonl",
        help="bench history file (appended by benchmarks/bench_engine.py)",
    )
    stats_p.add_argument(
        "--store", default=None, metavar="DB",
        help="with --bench: read the trajectory from an ingested result "
        "store (`repro ingest`) instead of the history file — the "
        "rendering is identical",
    )
    stats_p.set_defaults(func=cmd_stats)

    ingest_p = sub.add_parser(
        "ingest",
        help="index SWEEP_*.json / journals / BENCH_history.jsonl into a "
        "sqlite result store (idempotent; corrupt files skip with a "
        "warning)",
    )
    ingest_p.add_argument(
        "paths", nargs="+", metavar="FILE",
        help="result files to ingest (kind is detected from content)",
    )
    ingest_p.add_argument(
        "--store", default="RESULTS.db",
        help="sqlite result store path (created if missing)",
    )
    ingest_p.set_defaults(func=cmd_ingest)

    serve_p = sub.add_parser(
        "serve",
        help="serve results, provenance, and sweep submission over HTTP "
        "(endpoint table in docs/SERVICE.md)",
    )
    serve_p.add_argument(
        "--port", type=int, default=8321,
        help="TCP port (0 = ephemeral; see --port-file)",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument(
        "--store", default="RESULTS.db",
        help="sqlite result store to serve (see `repro ingest`)",
    )
    serve_p.add_argument(
        "--readonly", action="store_true",
        help="refuse every mutation: POST /sweeps and /ingest return "
        "403, /solve serves warm cache hits only (misses return 409)",
    )
    serve_p.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR,
        help="trial cache behind GET /solve (shared with sweep/report)",
    )
    serve_p.add_argument(
        "--artifact-dir", default=None,
        help="where submitted sweeps write SWEEP_*.json (default: the "
        "store's directory)",
    )
    serve_p.add_argument(
        "--ingest", nargs="*", default=[], metavar="FILE",
        help="ingest these files before serving",
    )
    serve_p.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="write the bound port here once listening (for --port 0)",
    )
    serve_p.set_defaults(func=cmd_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    load_plugins()
    parser = make_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
