"""Shared type aliases used across the repro package."""

from __future__ import annotations

from typing import Any, Hashable, Mapping

#: Node identifiers. The paper assumes unique IDs from a polynomial range, so
#: concrete node IDs are integers.
NodeId = int

#: Cluster labels in a uniquely-labeled BFS-clustering (Definition 2) are
#: arbitrary unique values; in practice we use integers (root IDs).
ClusterLabel = int

#: Colors of a colored BFS-clustering (Definition 4). Theorem 13 produces
#: pairs ``(phase, palette_color)`` which we canonicalise to integers, but
#: validators accept any hashable color.
Color = Hashable

#: Message payloads are arbitrary Python objects (the LOCAL model allows
#: unbounded messages).
Payload = Any

#: Outputs of O-LOCAL problems, keyed by node.
OutputMap = Mapping[NodeId, Any]
