"""``python -m repro`` — entry point for the CLI (see :mod:`repro.cli`)."""

import sys

from repro.cli import main

sys.exit(main())
