"""The unified scenario API: one front door for every way to run repro.

A :class:`Scenario` is a frozen, picklable description of one solve
run — *which* graph family at *what* size with *which* IDs and seed,
*which* problem, *which* algorithm on *which* engine, plus free-form
``params`` validated against the registries' parameter schemas. The
CLI's ``solve`` command, the sweep runner's grid trials, and ad-hoc
experiment scripts all reduce to scenarios, so anything registered in
:data:`~repro.graphs.families.GRAPH_FAMILIES`,
:data:`~repro.olocal.PROBLEMS`, or
:data:`~repro.core.algorithms.ALGORITHMS` — including third-party
``repro.plugins`` entry points — is immediately runnable everywhere.

- :func:`run_scenario` executes one scenario in-process and returns a
  :class:`RunResult` (validation errors are *returned*, not raised, so
  batch drivers can collect them);
- :func:`run_grid` enumerates a (families × sizes × problems ×
  algorithms × trials) grid and bridges into
  :func:`repro.runner.executor.run_sweep`, so grids shard across worker
  processes and hit the content-addressed trial cache for free.

Quickstart::

    from repro import Scenario, run_scenario

    result = run_scenario(Scenario(family="gnp", n=48, problem="mis"))
    assert result.ok
    print(result.outcome.awake_complexity, result.outcome.round_complexity)
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.core.algorithms import (
    ALGORITHMS,
    ENGINE_FAULTY,
    ENGINES,
    FAULT_PARAMS,
    SolveOutcome,
)
from repro.graphs.families import (
    GRAPH_FAMILIES,
    build_family_graph,
    validate_id_scheme,
)
from repro.graphs.graph import StaticGraph
from repro.obs import counters
from repro.obs.spans import span
from repro.olocal import PROBLEMS
from repro.registry import UnknownNameError, load_plugins

if TYPE_CHECKING:
    from repro.runner.executor import SweepResult

#: Scenario params every family accepts via :func:`build_family_graph`
#: compatibility defaults (forwarded only where the schema declares them).
_COMPAT_FAMILY_PARAMS = ("p", "degree")


@dataclass(frozen=True)
class Scenario:
    """A frozen, picklable description of one solve run.

    ``params`` accepts a mapping at construction time and is normalized
    to a sorted tuple of ``(name, value)`` pairs, so scenarios hash,
    compare, and pickle deterministically. Parameter names must be
    declared by the chosen family's or algorithm's schema (checked by
    :meth:`validate`).

    ``engine=None`` selects the algorithm's default engine — unless the
    fault axis is active (``fault_drop``/``fault_corrupt`` nonzero), in
    which case the ``faulty-simulator`` engine is auto-selected.
    Setting an explicit non-faulty engine together with active fault
    params is a validation error. The fault RNG seed is ``fault_seed``
    when nonzero, else the scenario ``seed``.
    """

    family: str = "gnp"
    n: int = 32
    ids: str = "identity"
    seed: int = 0
    problem: str = "mis"
    algorithm: str = "theorem1"
    engine: str | None = None
    params: tuple[tuple[str, Any], ...] = ()
    fault_drop: float = 0.0
    fault_corrupt: float = 0.0
    fault_seed: int = 0
    immune_rounds: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        """Canonicalize params/immune_rounds into sorted tuples."""
        if isinstance(self.params, Mapping):
            object.__setattr__(
                self, "params", tuple(sorted(self.params.items()))
            )
        else:
            object.__setattr__(
                self, "params", tuple(sorted(tuple(self.params)))
            )
        object.__setattr__(
            self, "immune_rounds", tuple(sorted(set(self.immune_rounds)))
        )

    @property
    def faults_active(self) -> bool:
        """Whether the fault axis can fire for this scenario."""
        return self.fault_drop > 0 or self.fault_corrupt > 0

    def resolved_engine(self) -> str | None:
        """The engine that will actually run.

        ``None`` still means "the algorithm's default" — except active
        fault params auto-select :data:`~repro.core.algorithms.ENGINE_FAULTY`.
        """
        if self.engine is None and self.faults_active:
            return ENGINE_FAULTY
        return self.engine

    def fault_plan(self):
        """The :class:`~repro.model.faults.FaultPlan` this scenario implies."""
        from repro.model.faults import FaultPlan

        return FaultPlan(
            drop_probability=self.fault_drop,
            corrupt_probability=self.fault_corrupt,
            seed=self.fault_seed if self.fault_seed else self.seed,
            immune_rounds=frozenset(self.immune_rounds),
        )

    def params_dict(self) -> dict[str, Any]:
        """The normalized params as a plain dict."""
        return dict(self.params)

    def with_params(self, **updates: Any) -> "Scenario":
        """A copy with ``updates`` merged into ``params``."""
        merged = {**self.params_dict(), **updates}
        return replace(self, params=tuple(sorted(merged.items())))

    def validate(self) -> list[str]:
        """All validation errors (empty list = runnable).

        Checks registry membership of family/problem/algorithm, engine
        support, the ID scheme, the size, and that every param name is
        declared by the family's or the algorithm's schema. Plugins are
        loaded first, so entry-point registrations count.
        """
        load_plugins()
        errors: list[str] = []
        allowed: set[str] = set(_COMPAT_FAMILY_PARAMS)
        try:
            allowed |= set(GRAPH_FAMILIES.entry(self.family).params)
        except UnknownNameError as exc:
            errors.append(str(exc.args[0]))
        try:
            PROBLEMS.get(self.problem)
        except UnknownNameError as exc:
            errors.append(str(exc.args[0]))
        engine = self.resolved_engine()
        try:
            entry = ALGORITHMS.entry(self.algorithm)
            allowed |= set(entry.params)
            if engine is not None:
                # Unknown engines list all of ENGINES; known-but-
                # unsupported ones list the adapter's engines — the same
                # UnknownNameError messages AlgorithmAdapter.solve raises.
                entry.value.validate_engine(engine)
        except UnknownNameError as exc:
            errors.append(str(exc.args[0]))
        for name in ("fault_drop", "fault_corrupt"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                errors.append(f"{name} must be in [0, 1], got {value}")
        if self.faults_active and self.engine not in (None, ENGINE_FAULTY):
            errors.append(
                f"fault params require engine {ENGINE_FAULTY!r} (or "
                f"engine=None to auto-select it), not {self.engine!r}"
            )
        if self.n < 1:
            errors.append(f"n must be >= 1, got {self.n}")
        try:
            validate_id_scheme(self.ids)
        except UnknownNameError as exc:
            errors.append(str(exc.args[0]))
        unknown = sorted(set(self.params_dict()) - allowed)
        if unknown:
            errors.append(
                f"unknown scenario param(s) {unknown}; declared: "
                f"{sorted(allowed)}"
            )
        return errors

    def describe(self) -> dict[str, Any]:
        """JSON-able identity of the scenario."""
        described = {
            "family": self.family,
            "n": self.n,
            "ids": self.ids,
            "seed": self.seed,
            "problem": self.problem,
            "algorithm": self.algorithm,
            "engine": self.engine,
            "params": self.params_dict(),
        }
        if self.faults_active:
            described["faults"] = self.fault_plan().describe()
        return described


@dataclass(frozen=True)
class RunResult:
    """What :func:`run_scenario` returns — outcome *or* errors.

    Attributes:
        scenario: the scenario as run.
        errors: validation errors; non-empty means nothing executed.
        graph: the instantiated graph (``None`` when validation failed).
        outcome: the algorithm's uniform :class:`SolveOutcome`
            (``None`` when validation failed).
    """

    scenario: Scenario
    errors: tuple[str, ...] = ()
    graph: StaticGraph | None = None
    outcome: SolveOutcome | None = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        """True when the scenario validated and ran to completion."""
        return not self.errors


def run_scenario(scenario: Scenario) -> RunResult:
    """Validate and execute one scenario in-process.

    Deterministic: the same scenario always produces the same outputs
    and the same awake/round/message accounting. Validation errors are
    returned on the :class:`RunResult` (check ``result.ok``); genuine
    runtime failures — a solver bug, an invalid solution — still raise.
    """
    with span(
        "scenario.run",
        family=scenario.family,
        n=scenario.n,
        problem=scenario.problem,
        algorithm=scenario.algorithm,
    ):
        with span("scenario.validate"):
            errors = scenario.validate()
        if errors:
            return RunResult(scenario=scenario, errors=tuple(errors))
        params = scenario.params_dict()
        adapter_entry = ALGORITHMS.entry(scenario.algorithm)
        family_entry = GRAPH_FAMILIES.entry(scenario.family)
        family_params = {
            k: v for k, v in params.items() if k in family_entry.params
        }
        algo_params = {
            k: v for k, v in params.items() if k in adapter_entry.params
        }
        with span("scenario.build_graph", family=scenario.family, n=scenario.n):
            graph = build_family_graph(
                scenario.family,
                scenario.n,
                seed=scenario.seed,
                ids=scenario.ids,
                **family_params,
            )
        engine = scenario.resolved_engine()
        if engine == ENGINE_FAULTY:
            algo_params["fault_plan"] = scenario.fault_plan()
        with span(
            "scenario.solve", algorithm=scenario.algorithm, engine=engine
        ):
            outcome = adapter_entry.value.solve(
                graph,
                PROBLEMS.get(scenario.problem),
                engine=engine,
                **algo_params,
            )
        # Message counts are charged by the engine kernels themselves
        # (simulator / vectorized), which also covers the pipelines'
        # nested simulations; here only the scenario itself is counted.
        counters.add("scenario.run")
    return RunResult(scenario=scenario, graph=graph, outcome=outcome)


def run_grid(
    families: Iterable[str] = ("path", "gnp"),
    sizes: Iterable[int] = (16, 32),
    problems: Iterable[str] = ("mis",),
    algorithms: Iterable[str] = ("theorem1",),
    trials: int = 1,
    seed: int = 0,
    workers: int = 1,
    cache: Any = None,
    name: str = "grid",
    progress: Any = None,
    engines: Iterable[str] = (),
    fault_drop: float = 0.0,
    fault_corrupt: float = 0.0,
    fault_seed: int = 0,
    immune_rounds: Iterable[int] = (),
    **runner_options: Any,
) -> "SweepResult":
    """Run a seeded scenario grid through the sharded sweep runner.

    The grid is enumerated by
    :func:`repro.runner.trials.sweep_from_grid` (per-trial seeds are
    content-addressed off ``seed``) and executed by
    :func:`repro.runner.executor.run_sweep` — so ``workers > 1`` shards
    across processes and the aggregated tables are byte-identical for
    any worker count. Caching is opt-in here (unlike the CLI, which
    defaults it on): pass ``cache=TrialCache()`` to serve repeated
    trials from the content-addressed store instead of recomputing.
    Unknown names raise ``KeyError`` listing the valid registry names,
    before anything runs.

    A non-empty ``engines`` adds an engine axis: every (family, n,
    problem, algorithm) cell runs once per listed engine — the per-trial
    graph seed is engine-independent, so an engine sweep is a built-in
    differential test (bit-identical metric columns per cell). Engine
    names are validated against every selected algorithm up front; the
    default (no axis) leaves each algorithm on its default engine and
    keeps pre-existing cache keys byte for byte.

    ``fault_drop``/``fault_corrupt``/``fault_seed``/``immune_rounds``
    put every grid trial on the ``faulty-simulator`` engine (fault-free
    grids keep their existing cache keys; combining them with an
    ``engines`` axis is rejected). ``runner_options`` are
    forwarded to :func:`~repro.runner.executor.run_sweep` — ``retry``,
    ``timeout``, ``keep_going``, ``journal``, ``max_pool_restarts``.

    Returns the runner's ``SweepResult`` (``.experiments()`` for
    tables, ``.render()`` for markdown).
    """
    from repro.runner.executor import run_sweep
    from repro.runner.trials import sweep_from_grid

    load_plugins()
    spec = sweep_from_grid(
        families=tuple(families),
        sizes=tuple(sizes),
        problems=tuple(problems),
        algorithms=tuple(algorithms),
        trials_per_config=trials,
        master_seed=seed,
        name=name,
        engines=tuple(engines),
        fault_drop=fault_drop,
        fault_corrupt=fault_corrupt,
        fault_seed=fault_seed,
        immune_rounds=immune_rounds,
    )
    return run_sweep(
        spec, workers=workers, progress=progress, cache=cache,
        **runner_options,
    )


def scenarios_from_grid(
    families: Iterable[str],
    sizes: Iterable[int],
    problems: Iterable[str],
    algorithms: Iterable[str] = ("theorem1",),
    trials: int = 1,
    seed: int = 0,
    engines: Iterable[str] = (),
) -> list[Scenario]:
    """The scenarios a :func:`run_grid` call would execute, in trial order.

    Exposed for callers that want to run or inspect trials individually;
    per-trial seeds are the same content-addressed derivations the grid
    runner uses. A non-empty ``engines`` fans each cell out across
    engines (seeds, and therefore graphs, stay engine-independent).
    """
    from repro.runner.specs import derive_seed

    engine_axis: tuple[str | None, ...] = tuple(engines) or (None,)
    result: list[Scenario] = []
    for family in families:
        for n in sizes:
            for problem in problems:
                for algorithm in algorithms:
                    for engine in engine_axis:
                        for t in range(trials):
                            result.append(
                                Scenario(
                                    family=family,
                                    n=n,
                                    seed=derive_seed(
                                        seed, family, n, problem,
                                        algorithm, t,
                                    ),
                                    problem=problem,
                                    algorithm=algorithm,
                                    engine=engine,
                                )
                            )
    return result


def catalog() -> dict[str, Any]:
    """The axes of the scenario space (plugins included).

    Canonical names of every registered family, problem, and algorithm,
    plus the engine names, the per-algorithm engine support matrix
    (``engine_matrix``, default engine first — what ``repro solve
    --list`` prints), the fault-axis parameter schema (``fault_params``)
    and which algorithms accept the ``faulty-simulator`` engine
    (``fault_capable``)."""
    load_plugins()
    return {
        "families": GRAPH_FAMILIES.names(),
        "problems": PROBLEMS.names(),
        "algorithms": ALGORITHMS.names(),
        "engines": ENGINES,
        "engine_matrix": {
            name: ALGORITHMS.get(name).engines for name in ALGORITHMS.names()
        },
        "fault_params": dict(FAULT_PARAMS),
        "fault_capable": tuple(
            name
            for name in ALGORITHMS.names()
            if ENGINE_FAULTY in ALGORITHMS.get(name).engines
        ),
    }


__all__ = [
    "RunResult",
    "Scenario",
    "SolveOutcome",
    "catalog",
    "load_plugins",
    "run_grid",
    "run_scenario",
    "scenarios_from_grid",
]
